// Package sim replays a recorded task trace on a machine model by
// discrete-event simulation — the substitute for the paper's 16-node Dancer
// cluster (§V-A), which is not available to this reproduction.
//
// The simulator is deliberately simple and transparent: each node has a
// fixed number of cores; a task occupies one core of its owner node for
// flops / (core GFLOP/s) seconds plus a fixed scheduling overhead; a
// dependency edge that crosses nodes delays the successor by
// latency + bytes/bandwidth. The simulated makespan therefore reflects the
// structural properties the paper's performance figures measure — critical
// path, kernel cost ratios (Table I), update parallelism, communication on
// the panel path — while absolute speeds come from the machine preset.
package sim

import (
	"container/heap"
	"fmt"

	"luqr/internal/runtime"
)

// Machine is the platform model.
type Machine struct {
	Name         string
	Nodes        int
	CoresPerNode int
	CoreGFlops   float64 // sustained per-core DGEMM rate
	LatencySec   float64 // per-message latency
	BandwidthBps float64 // per-link bandwidth, bytes/second
	OverheadSec  float64 // fixed per-task runtime overhead
	// NICSerial serializes each node's incoming transfers on a single NIC
	// (a contention model): concurrent receives queue instead of sharing
	// unlimited bandwidth.
	NICSerial bool
}

// PeakGFlops returns the aggregate sustained rate of the machine, the
// normalization of the paper's "% of peak" columns.
func (m Machine) PeakGFlops() float64 {
	return float64(m.Nodes) * float64(m.CoresPerNode) * m.CoreGFlops
}

// Dancer returns the model of the paper's platform: 16 nodes × 8 Westmere
// cores at 2.13 GHz (theoretical peak 1091 GFLOP/s ⇒ 8.52 GFLOP/s per
// core), Infiniband 10G (≈1.25 GB/s, ≈5 µs latency).
func Dancer() Machine {
	return Machine{
		Name:         "dancer",
		Nodes:        16,
		CoresPerNode: 8,
		CoreGFlops:   1091.0 / 128.0,
		LatencySec:   5e-6,
		BandwidthBps: 1.25e9,
		OverheadSec:  2e-6,
	}
}

// Result summarizes one simulated execution.
type Result struct {
	Makespan     float64 // seconds
	ComputeTime  float64 // Σ task durations (core-seconds)
	TotalFlops   float64
	Messages     int
	CommBytes    int
	KernelTime   map[string]float64 // core-seconds per kernel family
	TasksPerNode []int
}

// ExtraMessages lets callers charge communication that is not derivable
// from tile dependencies (e.g. the Bruck all-reduce of the criterion): the
// messages of group i delay every task whose ID ≥ After by the group's
// completion, modeled as rounds of concurrent messages.
type ExtraMessages struct {
	After    int // the first task ID that must wait for these messages
	Rounds   int
	PerRound int
	Bytes    int
}

// Simulate replays the trace on the machine with event-driven list
// scheduling: a task becomes ready when its dependencies finish (plus
// cross-node transfer delays); ready tasks are dispatched
// earliest-ready-first (priority, then submission order break ties) onto
// the earliest-available core of their owner node. Tasks with Node ≥
// m.Nodes are folded onto Node mod m.Nodes.
func Simulate(trace []*runtime.TraceTask, m Machine, extra []ExtraMessages) Result {
	if m.Nodes < 1 || m.CoresPerNode < 1 || m.CoreGFlops <= 0 {
		panic(fmt.Sprintf("sim: invalid machine %+v", m))
	}
	res := Result{KernelTime: map[string]float64{}, TasksPerNode: make([]int, m.Nodes)}
	msgRate := 1.0 / m.BandwidthBps

	// Index tasks and build successor lists.
	idx := make(map[int]int, len(trace)) // task ID → position
	for pos, t := range trace {
		idx[t.ID] = pos
	}
	nDeps := make([]int, len(trace))
	succs := make([][]int, len(trace))
	node := make([]int, len(trace))
	readyAt := make([]float64, len(trace)) // max dep finish + comm delays
	for pos, t := range trace {
		n := t.Node % m.Nodes
		if n < 0 {
			n = 0
		}
		node[pos] = n
		nDeps[pos] = len(t.Deps)
		for _, d := range t.Deps {
			dp, ok := idx[d]
			if !ok {
				nDeps[pos]-- // dependency outside the trace slice
				continue
			}
			succs[dp] = append(succs[dp], pos)
		}
		for _, msg := range t.Recv {
			res.Messages++
			res.CommBytes += msg.Bytes
		}
		for _, msg := range t.ExtraComm {
			res.Messages++
			res.CommBytes += msg.Bytes
		}
	}

	// Extra message groups (criterion all-reduces): a floor on the ready
	// time of every task with ID ≥ After, anchored at the group's
	// activation.
	extraIdx := 0
	extraFloor := 0.0
	extraActive := func(id int) bool {
		return extraIdx > 0 && extra[extraIdx-1].After <= id
	}

	// Per-node pools of core availability times (min-heaps), plus one
	// receive-NIC clock per node for the contention model.
	cores := make([]coreHeap, m.Nodes)
	for n := range cores {
		cores[n] = make(coreHeap, m.CoresPerNode)
		heap.Init(&cores[n])
	}
	nicFree := make([]float64, m.Nodes)

	// Event queue of ready tasks, ordered by (readyAt, −priority, seq).
	rq := &simReadyQueue{trace: trace, ready: readyAt}
	for pos := range trace {
		if nDeps[pos] == 0 {
			heap.Push(rq, pos)
		}
	}

	finish := make([]float64, len(trace))
	scheduled := 0
	for rq.Len() > 0 {
		pos := heap.Pop(rq).(int)
		t := trace[pos]
		n := node[pos]
		ready := readyAt[pos]
		// Receiver-side serialization of the incoming payloads, plus the
		// internal synchronous phases (pivot exchanges, criterion
		// all-reduces), which cost a full latency each.
		commDur := 0.0
		for _, msg := range t.Recv {
			commDur += float64(msg.Bytes) * msgRate
		}
		for _, msg := range t.ExtraComm {
			commDur += m.LatencySec + float64(msg.Bytes)*msgRate
		}
		if commDur > 0 {
			if m.NICSerial {
				start := ready
				if nicFree[n] > start {
					start = nicFree[n]
				}
				nicFree[n] = start + commDur
				ready = nicFree[n]
			} else {
				ready += commDur
			}
		}
		// Activate any all-reduce groups triggered at or before this task.
		for extraIdx < len(extra) && extra[extraIdx].After <= t.ID {
			g := extra[extraIdx]
			dur := float64(g.Rounds) * (m.LatencySec + float64(g.Bytes)*msgRate)
			res.Messages += g.Rounds * g.PerRound
			res.CommBytes += g.Rounds * g.PerRound * g.Bytes
			if f := ready + dur; f > extraFloor {
				extraFloor = f
			}
			extraIdx++
		}
		if extraActive(t.ID) && extraFloor > ready {
			ready = extraFloor
		}

		c := &cores[n]
		start := (*c)[0]
		if ready > start {
			start = ready
		}
		dur := t.Flops/(m.CoreGFlops*1e9) + m.OverheadSec
		end := start + dur
		(*c)[0] = end
		heap.Fix(c, 0)
		finish[pos] = end
		scheduled++

		res.ComputeTime += dur
		res.TotalFlops += t.Flops
		res.KernelTime[t.Kernel] += dur
		res.TasksPerNode[n]++
		if end > res.Makespan {
			res.Makespan = end
		}

		for _, sp := range succs[pos] {
			df := end
			if node[sp] != n {
				df += m.LatencySec
			}
			if df > readyAt[sp] {
				readyAt[sp] = df
			}
			nDeps[sp]--
			if nDeps[sp] == 0 {
				heap.Push(rq, sp)
			}
		}
	}
	if scheduled != len(trace) {
		panic(fmt.Sprintf("sim: trace has a dependency cycle or missing tasks (%d/%d scheduled)", scheduled, len(trace)))
	}
	return res
}

// simReadyQueue orders ready task positions by (readyAt, −priority, ID).
type simReadyQueue struct {
	trace []*runtime.TraceTask
	ready []float64
	items []int
}

func (q *simReadyQueue) Len() int { return len(q.items) }
func (q *simReadyQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.ready[a] != q.ready[b] {
		return q.ready[a] < q.ready[b]
	}
	ta, tb := q.trace[a], q.trace[b]
	if ta.Priority != tb.Priority {
		return ta.Priority > tb.Priority
	}
	return ta.ID < tb.ID
}
func (q *simReadyQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *simReadyQueue) Push(x any)    { q.items = append(q.items, x.(int)) }
func (q *simReadyQueue) Pop() any {
	old := q.items
	n := len(old)
	v := old[n-1]
	q.items = old[:n-1]
	return v
}

// CriticalPath returns the makespan on an idealized machine with unbounded
// cores per node and zero communication cost — the pure dependency length of
// the trace in seconds.
func CriticalPath(trace []*runtime.TraceTask, coreGFlops float64) float64 {
	finish := map[int]float64{}
	maxT := 0.0
	for _, t := range trace {
		ready := 0.0
		for _, d := range t.Deps {
			if f := finish[d]; f > ready {
				ready = f
			}
		}
		end := ready + t.Flops/(coreGFlops*1e9)
		finish[t.ID] = end
		if end > maxT {
			maxT = end
		}
	}
	return maxT
}

type coreHeap []float64

func (h coreHeap) Len() int           { return len(h) }
func (h coreHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h coreHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *coreHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
