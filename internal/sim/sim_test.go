package sim

import (
	"math"
	"testing"

	"luqr/internal/runtime"
)

// mkTask builds a trace record directly (the simulator only reads the
// exported fields).
func mkTask(id int, node int, flops float64, deps []int, recv []runtime.Message) *runtime.TraceTask {
	return &runtime.TraceTask{ID: id, Name: "t", Kernel: "K", Node: node, Flops: flops, Deps: deps, Recv: recv}
}

// testMachine: 1 GFLOP/s cores so that flops = nanoseconds·1e9, no overhead.
func testMachine(nodes, cores int) Machine {
	return Machine{Name: "test", Nodes: nodes, CoresPerNode: cores, CoreGFlops: 1, LatencySec: 0, BandwidthBps: 1e30}
}

func TestSerialChainMakespan(t *testing.T) {
	trace := []*runtime.TraceTask{
		mkTask(0, 0, 1e9, nil, nil),
		mkTask(1, 0, 1e9, []int{0}, nil),
		mkTask(2, 0, 1e9, []int{1}, nil),
	}
	r := Simulate(trace, testMachine(1, 4), nil)
	if math.Abs(r.Makespan-3) > 1e-9 {
		t.Fatalf("chain makespan = %g, want 3", r.Makespan)
	}
}

func TestParallelTasksUseCores(t *testing.T) {
	var trace []*runtime.TraceTask
	for i := 0; i < 8; i++ {
		trace = append(trace, mkTask(i, 0, 1e9, nil, nil))
	}
	// 4 cores → 8 unit tasks take 2 time units.
	r := Simulate(trace, testMachine(1, 4), nil)
	if math.Abs(r.Makespan-2) > 1e-9 {
		t.Fatalf("parallel makespan = %g, want 2", r.Makespan)
	}
	// 1 core → 8 units.
	r = Simulate(trace, testMachine(1, 1), nil)
	if math.Abs(r.Makespan-8) > 1e-9 {
		t.Fatalf("serialized makespan = %g, want 8", r.Makespan)
	}
}

func TestCommunicationDelay(t *testing.T) {
	m := testMachine(2, 1)
	m.LatencySec = 0.5
	m.BandwidthBps = 100 // bytes per second
	trace := []*runtime.TraceTask{
		mkTask(0, 0, 1e9, nil, nil),
		mkTask(1, 1, 1e9, []int{0}, []runtime.Message{{From: 0, To: 1, Bytes: 50}}),
	}
	r := Simulate(trace, m, nil)
	// 1 (producer) + 0.5 latency + 0.5 transfer + 1 (consumer) = 3.
	if math.Abs(r.Makespan-3) > 1e-9 {
		t.Fatalf("comm makespan = %g, want 3", r.Makespan)
	}
	if r.Messages != 1 || r.CommBytes != 50 {
		t.Fatalf("comm accounting: %d msgs %d bytes", r.Messages, r.CommBytes)
	}
	// Same-node dependency: no delay.
	trace[1] = mkTask(1, 0, 1e9, []int{0}, nil)
	r = Simulate(trace, m, nil)
	if math.Abs(r.Makespan-2) > 1e-9 {
		t.Fatalf("local makespan = %g, want 2", r.Makespan)
	}
}

func TestExtraMessagesStallLaterTasks(t *testing.T) {
	m := testMachine(1, 4)
	m.LatencySec = 1
	trace := []*runtime.TraceTask{
		mkTask(0, 0, 1e9, nil, nil),
		mkTask(1, 0, 1e9, []int{0}, nil),
	}
	// An all-reduce of 2 rounds × latency 1 activates before task 1.
	extra := []ExtraMessages{{After: 1, Rounds: 2, PerRound: 4, Bytes: 0}}
	r := Simulate(trace, m, extra)
	// Task 0 ends at 1; all-reduce floor = 1 + 2·1 = 3; task 1 runs 3→4.
	if math.Abs(r.Makespan-4) > 1e-9 {
		t.Fatalf("stalled makespan = %g, want 4", r.Makespan)
	}
	if r.Messages != 8 {
		t.Fatalf("extra messages not counted: %d", r.Messages)
	}
}

func TestKernelTimeBreakdown(t *testing.T) {
	trace := []*runtime.TraceTask{
		{ID: 0, Kernel: "GEMM", Node: 0, Flops: 2e9},
		{ID: 1, Kernel: "GETRF", Node: 0, Flops: 1e9},
	}
	r := Simulate(trace, testMachine(1, 2), nil)
	if math.Abs(r.KernelTime["GEMM"]-2) > 1e-9 || math.Abs(r.KernelTime["GETRF"]-1) > 1e-9 {
		t.Fatalf("kernel breakdown %v", r.KernelTime)
	}
	if r.TotalFlops != 3e9 {
		t.Fatalf("total flops %g", r.TotalFlops)
	}
}

func TestCriticalPathIgnoresResources(t *testing.T) {
	// Two independent unit tasks then a join: CP = 2 regardless of cores.
	trace := []*runtime.TraceTask{
		mkTask(0, 0, 1e9, nil, nil),
		mkTask(1, 0, 1e9, nil, nil),
		mkTask(2, 0, 1e9, []int{0, 1}, nil),
	}
	if cp := CriticalPath(trace, 1); math.Abs(cp-2) > 1e-9 {
		t.Fatalf("critical path = %g, want 2", cp)
	}
}

func TestDancerPreset(t *testing.T) {
	d := Dancer()
	if d.Nodes != 16 || d.CoresPerNode != 8 {
		t.Fatal("Dancer shape wrong")
	}
	if math.Abs(d.PeakGFlops()-1091) > 0.5 {
		t.Fatalf("Dancer peak = %g, want ≈1091 (paper §V-A)", d.PeakGFlops())
	}
}

func TestNodeFolding(t *testing.T) {
	// A task placed on node 5 of a 2-node machine folds onto node 1.
	trace := []*runtime.TraceTask{mkTask(0, 5, 1e9, nil, nil)}
	r := Simulate(trace, testMachine(2, 1), nil)
	if r.TasksPerNode[1] != 1 {
		t.Fatalf("folding wrong: %v", r.TasksPerNode)
	}
}

func TestOverheadCharged(t *testing.T) {
	m := testMachine(1, 1)
	m.OverheadSec = 0.25
	trace := []*runtime.TraceTask{mkTask(0, 0, 1e9, nil, nil), mkTask(1, 0, 0, []int{0}, nil)}
	r := Simulate(trace, m, nil)
	if math.Abs(r.Makespan-1.5) > 1e-9 {
		t.Fatalf("overhead makespan = %g, want 1.5", r.Makespan)
	}
}

func TestNICSerialContention(t *testing.T) {
	// Two producers on nodes 1 and 2 feed two consumers on node 0; with a
	// serial NIC the second consumer's transfer queues behind the first.
	m := testMachine(3, 4)
	m.BandwidthBps = 100 // 1 byte = 0.01s
	mkrecv := func(id, from int, deps []int) *runtime.TraceTask {
		return &runtime.TraceTask{ID: id, Kernel: "K", Node: 0, Deps: deps,
			Recv: []runtime.Message{{From: from, To: 0, Bytes: 100}}}
	}
	trace := []*runtime.TraceTask{
		mkTask(0, 1, 0, nil, nil),
		mkTask(1, 2, 0, nil, nil),
		mkrecv(2, 1, []int{0}),
		mkrecv(3, 2, []int{1}),
	}
	shared := Simulate(trace, m, nil)
	m.NICSerial = true
	serial := Simulate(trace, m, nil)
	// Shared: both 1-second transfers overlap → makespan ≈ 1s.
	// Serial: they queue → makespan ≈ 2s.
	if !(serial.Makespan > shared.Makespan*1.5) {
		t.Fatalf("NIC contention not modeled: shared %.3f vs serial %.3f", shared.Makespan, serial.Makespan)
	}
}

func TestReadyQueueOrdering(t *testing.T) {
	// Equal ready times: higher priority first, then lower ID.
	trace := []*runtime.TraceTask{
		{ID: 0, Kernel: "A", Node: 0, Flops: 1e9, Priority: 1},
		{ID: 1, Kernel: "B", Node: 0, Flops: 1e9, Priority: 5},
		{ID: 2, Kernel: "C", Node: 0, Flops: 1e9, Priority: 5},
	}
	m := testMachine(1, 1)
	r := Simulate(trace, m, nil)
	if math.Abs(r.Makespan-3) > 1e-9 {
		t.Fatalf("makespan %g", r.Makespan)
	}
	// Kernel B (priority 5, lower ID among equals) must start first; we
	// can't observe order directly, but the simulation must schedule all
	// three tasks exactly once.
	total := 0
	for _, n := range r.TasksPerNode {
		total += n
	}
	if total != 3 {
		t.Fatalf("scheduled %d tasks", total)
	}
}

func TestSimulatePanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cyclic trace")
		}
	}()
	trace := []*runtime.TraceTask{
		{ID: 0, Node: 0, Deps: []int{1}},
		{ID: 1, Node: 0, Deps: []int{0}},
	}
	Simulate(trace, testMachine(1, 1), nil)
}

func TestSimulateInvalidMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid machine")
		}
	}()
	Simulate(nil, Machine{}, nil)
}

func TestExtraCommCharged(t *testing.T) {
	m := testMachine(1, 1)
	m.LatencySec = 0.5
	m.BandwidthBps = 100
	trace := []*runtime.TraceTask{
		{ID: 0, Node: 0, Flops: 1e9,
			ExtraComm: []runtime.Message{{From: 1, To: 0, Bytes: 50}, {From: 2, To: 0, Bytes: 50}}},
	}
	r := Simulate(trace, m, nil)
	// Two serial phases of 0.5 + 0.5 each, then 1s of compute.
	if math.Abs(r.Makespan-3) > 1e-9 {
		t.Fatalf("ExtraComm makespan = %g, want 3", r.Makespan)
	}
	if r.Messages != 2 || r.CommBytes != 100 {
		t.Fatalf("ExtraComm accounting: %d msgs %d bytes", r.Messages, r.CommBytes)
	}
}
