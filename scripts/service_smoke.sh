#!/usr/bin/env bash
# Service smoke test: build luqr-serve, run it, exercise the full job +
# cached-solve + graceful-shutdown path over HTTP, and fail on any
# divergence. CI runs this inside the tier-1 gate.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18099}"
BASE="http://$ADDR"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"; [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true' EXIT

echo "== build"
go build -o "$DIR/luqr-serve" ./cmd/luqr-serve
go build -o "$DIR/luqr-bench" ./cmd/luqr-bench

echo "== start"
"$DIR/luqr-serve" -addr "$ADDR" -concurrency 2 -queue 8 -drain 30s >"$DIR/serve.log" 2>&1 &
PID=$!

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never became healthy"; cat "$DIR/serve.log"; exit 1; }
  sleep 0.1
done
echo "healthy"

echo "== submit job"
# α is pinned: the digest of an alpha-unset request tracks the learned α,
# which this job's own completion will move — the learning leg below covers
# that path; here the cache contract is asserted with a stable digest.
BODY='{"matrix":{"n":240,"gen":"random","seed":5},"config":{"alg":"luqr","nb":40,"alpha":100}}'
JOB=$(curl -sf -X POST -d "$BODY" "$BASE/v1/jobs" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "job $JOB"

echo "== poll to completion"
for i in $(seq 1 100); do
  STATE=$(curl -sf "$BASE/v1/jobs/$JOB" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "job failed"; curl -s "$BASE/v1/jobs/$JOB"; exit 1; }
  [ "$i" = 100 ] && { echo "job never finished (state=$STATE)"; exit 1; }
  sleep 0.2
done
curl -sf "$BASE/v1/jobs/$JOB" | python3 -c '
import json, sys
v = json.load(sys.stdin)
assert v["report"]["decisions"], "done job carries no per-step decisions"
print("decisions:", " ".join(v["report"]["decisions"]))'

echo "== solve twice against the cached factorization"
SOLVE='{"matrix":{"n":240,"gen":"random","seed":5},"config":{"alg":"luqr","nb":40,"alpha":100}}'
for i in 1 2; do
  curl -sf -X POST -d "$SOLVE" "$BASE/v1/solve" | python3 -c '
import json, sys
v = json.load(sys.stdin)
assert v["cache_hit"], "solve was not served from the factorization cache"
assert len(v["x"]) == 240, "wrong solution length"
print("solve '"$i"': cache_hit, |x| ok")'
done

echo "== learned alpha applies to an alpha-unset job"
# The pinned job above ran clean at α=100 without choosing LU everywhere,
# so its completion raised the class estimate to 200; a request that leaves
# alpha unset must now resolve it from the learner.
BODY2='{"matrix":{"n":240,"gen":"random","seed":5},"config":{"alg":"luqr","nb":40}}'
JOB2=$(curl -sf -X POST -d "$BODY2" "$BASE/v1/jobs" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
for i in $(seq 1 100); do
  STATE=$(curl -sf "$BASE/v1/jobs/$JOB2" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "learning job failed"; curl -s "$BASE/v1/jobs/$JOB2"; exit 1; }
  [ "$i" = 100 ] && { echo "learning job never finished (state=$STATE)"; exit 1; }
  sleep 0.2
done
curl -sf "$BASE/v1/jobs/$JOB2" | python3 -c '
import json, sys
v = json.load(sys.stdin)
r = v["report"]
assert r["alpha_source"] == "learned", "alpha_source = %r, want learned" % r.get("alpha_source")
assert r["alpha"] == 200, "alpha = %r, want the learned 200" % r.get("alpha")
print("learning job: alpha=%g (%s)" % (r["alpha"], r["alpha_source"]))'

curl -sf "$BASE/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
misses, hits = m["cache"]["misses"], m["cache"]["hits"]
assert misses == 2, "expected exactly 2 factorizations (pinned + learned alpha), got %d" % misses
assert hits >= 2, "expected >=2 cache hits, got %d" % hits
assert m["jobs"]["done_total"] >= 2
t = m["tune"]
assert t["alpha_learning"], "alpha learning off in default config"
assert t["alpha_classes"] >= 1, "no alpha classes learned"
assert t["alpha_updates"] >= 2, "alpha_updates = %d, want >= 2" % t["alpha_updates"]
print("metrics: misses=2, hits=%d, alpha_updates=%d" % (hits, t["alpha_updates"]))'

echo "== load generator"
"$DIR/luqr-bench" -load "$BASE" -load-requests 16 -load-clients 2 -load-n 160 -load-matrices 2

echo "== graceful shutdown (SIGTERM drains)"
kill -TERM "$PID"
for i in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  [ "$i" = 100 ] && { echo "server did not exit after SIGTERM"; cat "$DIR/serve.log"; exit 1; }
  sleep 0.2
done
wait "$PID" 2>/dev/null && RC=0 || RC=$?
grep -q "drained cleanly" "$DIR/serve.log" || { echo "no clean drain in log:"; cat "$DIR/serve.log"; exit 1; }
[ "$RC" = 0 ] || { echo "server exited with $RC"; cat "$DIR/serve.log"; exit 1; }
PID=

echo "== warm restart (factor store survives SIGTERM)"
STORE="$DIR/store"
"$DIR/luqr-serve" -addr "$ADDR" -concurrency 2 -queue 8 -drain 30s -store-dir "$STORE" >"$DIR/serve2.log" 2>&1 &
PID=$!
for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "store-backed server never became healthy"; cat "$DIR/serve2.log"; exit 1; }
  sleep 0.1
done
curl -sf -X POST -d "$SOLVE" "$BASE/v1/solve" >"$DIR/x1.json"
kill -TERM "$PID"
for i in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  [ "$i" = 100 ] && { echo "store-backed server did not exit after SIGTERM"; cat "$DIR/serve2.log"; exit 1; }
  sleep 0.2
done
wait "$PID" 2>/dev/null || true
PID=
ls "$STORE"/*.fact >/dev/null 2>&1 || { echo "no .fact spill in $STORE after drain"; ls -la "$STORE"; exit 1; }

"$DIR/luqr-serve" -addr "$ADDR" -concurrency 2 -queue 8 -drain 30s -store-dir "$STORE" >"$DIR/serve3.log" 2>&1 &
PID=$!
for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "restarted server never became healthy"; cat "$DIR/serve3.log"; exit 1; }
  sleep 0.1
done
curl -sf -X POST -d "$SOLVE" "$BASE/v1/solve" >"$DIR/x2.json"
python3 -c '
import json
x1 = json.load(open("'"$DIR"'/x1.json"))["x"]
x2 = json.load(open("'"$DIR"'/x2.json"))["x"]
assert x1 == x2, "warm-restarted solve is not bit-identical to the original"
print("restart: solution bit-identical across restart (%d entries)" % len(x2))'
curl -sf "$BASE/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
st = m["store"]
assert st["enabled"], "store not enabled despite -store-dir"
assert st["warm_hits"] >= 1, "restart did not warm-load from disk (warm_hits=%d)" % st["warm_hits"]
assert m["cache"]["misses"] == 0, "restart re-factored instead of warm-loading (misses=%d)" % m["cache"]["misses"]
print("restart: warm_hits=%d misses=0 files=%d" % (st["warm_hits"], st["files"]))'
kill -TERM "$PID"
for i in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.2
done
wait "$PID" 2>/dev/null || true
PID=
echo "service smoke: OK"
