package luqr_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"luqr"
)

// The facade tests exercise the library exactly the way a downstream user
// would: through the top-level package only.

func TestFacadeSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 96
	a, err := luqr.GenerateMatrix("random", n, rng)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j, v := range row {
			b[i] += v * xTrue[j]
		}
	}
	res, err := luqr.Solve(a, b, luqr.Config{
		Alg:       luqr.AlgLUQR,
		NB:        16,
		Grid:      luqr.NewGrid(2, 2),
		Criterion: luqr.MaxCriterion(200),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-7*(1+math.Abs(xTrue[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], xTrue[i])
		}
	}
	if hpl := luqr.HPL3(a, res.X, b); hpl > 10 {
		t.Fatalf("HPL3 = %g", hpl)
	}
	// Second right-hand side through the stored factorization.
	x2, err := res.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if x2[i] != res.X[i] {
			t.Fatal("re-solve of the same RHS diverged")
		}
	}
}

func TestFacadeAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, _ := luqr.GenerateMatrix("diagdom", 64, rng)
	b := make([]float64, 64)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, alg := range []luqr.Algorithm{
		luqr.AlgLUQR, luqr.AlgLUNoPiv, luqr.AlgLUIncPiv, luqr.AlgLUPP, luqr.AlgHQR, luqr.AlgCALU,
	} {
		res, err := luqr.Solve(a, b, luqr.Config{Alg: alg, NB: 16})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Report.HPL3 > 10 {
			t.Fatalf("%v: HPL3 = %g", alg, res.Report.HPL3)
		}
	}
}

func TestFacadeCriteria(t *testing.T) {
	for _, c := range []luqr.Criterion{
		luqr.MaxCriterion(1), luqr.SumCriterion(1), luqr.MUMPSCriterion(2.1),
		luqr.RandomCriterion(50), luqr.AlwaysLU(), luqr.AlwaysQR(),
	} {
		if c == nil || c.Name() == "" {
			t.Fatal("bad criterion from facade constructor")
		}
	}
}

func TestFacadeSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, _ := luqr.GenerateMatrix("random", 64, rng)
	b := make([]float64, 64)
	res, err := luqr.Solve(a, b, luqr.Config{
		Alg: luqr.AlgHQR, NB: 16, Grid: luqr.NewGrid(2, 2), Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := luqr.Simulate(res.Report.Trace, luqr.Dancer())
	if s.Makespan <= 0 || s.TotalFlops <= 0 {
		t.Fatalf("empty simulation result: %+v", s)
	}
	dot := luqr.TraceDOT(res.Report.Trace, true)
	if len(dot) == 0 {
		t.Fatal("empty DOT output")
	}
}

func TestFacadeSpecialMatrices(t *testing.T) {
	set := luqr.SpecialMatrices()
	if len(set) != 22 {
		t.Fatalf("special set has %d entries", len(set))
	}
	rng := rand.New(rand.NewSource(4))
	for _, e := range set {
		if _, err := luqr.GenerateMatrix(e.Name, 16, rng); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
	}
	if _, err := luqr.GenerateMatrix("nonsense", 16, rng); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}

func TestFacadeRandSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := luqr.RandSVD(48, 1e8, rng)
	b := make([]float64, 48)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := luqr.Solve(a, b, luqr.Config{Alg: luqr.AlgHQR, NB: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HPL3 > 10 {
		t.Fatalf("HQR backward error %g on κ=1e8 matrix", res.Report.HPL3)
	}
}

func TestFacadeVariantsAndTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, _ := luqr.GenerateMatrix("random", 64, rng)
	b := make([]float64, 64)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := luqr.Solve(a, b, luqr.Config{
		Alg: luqr.AlgLUQR, NB: 16, Variant: luqr.VariantB1,
		Criterion: luqr.MaxCriterion(100),
		IntraTree: luqr.TreeBinary, InterTree: luqr.TreeFibonacci,
		Scope: luqr.ScopeTile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HPL3 > 10 {
		t.Fatalf("HPL3 = %g", res.Report.HPL3)
	}
}

func TestFacadeHLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, _ := luqr.GenerateMatrix("random", 64, rng)
	b := make([]float64, 64)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := luqr.Solve(a, b, luqr.Config{Alg: luqr.AlgHLU, NB: 16, Grid: luqr.NewGrid(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HPL3 > 50 {
		t.Fatalf("HLU HPL3 = %g", res.Report.HPL3)
	}
}

// ExampleSolve demonstrates the basic hybrid solve on a small diagonally
// dominant system, where the Sum criterion accepts every LU step (§III-B).
func ExampleSolve() {
	rng := rand.New(rand.NewSource(1))
	a, _ := luqr.GenerateMatrix("diagdom", 64, rng)
	xTrue := make([]float64, 64)
	for i := range xTrue {
		xTrue[i] = 1
	}
	b := make([]float64, 64)
	for i := 0; i < 64; i++ {
		row := a.Row(i)
		for j, v := range row {
			b[i] += v * xTrue[j]
		}
	}
	res, err := luqr.Solve(a, b, luqr.Config{
		Alg:       luqr.AlgLUQR,
		NB:        16,
		Criterion: luqr.SumCriterion(1),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("LU steps: %d, QR steps: %d\n", res.Report.LUSteps, res.Report.QRSteps)
	fmt.Printf("solution accurate: %v\n", math.Abs(res.X[0]-1) < 1e-10)
	// Output:
	// LU steps: 4, QR steps: 0
	// solution accurate: true
}

// ExampleResult_Solve factors once and solves a second right-hand side by
// replaying the stored transformations (§II-D.1's second pass).
func ExampleResult_Solve() {
	rng := rand.New(rand.NewSource(2))
	a, _ := luqr.GenerateMatrix("diagdom", 32, rng)
	b1 := make([]float64, 32)
	b1[0] = 1
	res, err := luqr.Solve(a, b1, luqr.Config{Alg: luqr.AlgHQR, NB: 16})
	if err != nil {
		panic(err)
	}
	b2 := make([]float64, 32)
	b2[31] = 1
	x2, err := res.Solve(b2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("second solve ok: %v\n", luqr.HPL3(a, x2, b2) < 1)
	// Output:
	// second solve ok: true
}
