module luqr

go 1.22
