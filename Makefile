GO ?= go

# tier1 is the gate every change must keep green: vet, full build, full test
# suite, and the race detector over the concurrent packages (the dataflow
# engine and the solver core that runs on it).
.PHONY: tier1
tier1: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./internal/runtime/... ./internal/core/...

# bench regenerates the benchmark suite output (Tables/Figures as testing.B).
.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem .

# bench-kernels regenerates the machine-readable kernel baseline.
.PHONY: bench-kernels
bench-kernels:
	$(GO) run ./cmd/luqr-bench -json BENCH_kernels.json

# bench-solver regenerates the worker-scaling scheduler baseline
# (end-to-end wall/GFLOP/s and dispatch ns/task vs. the single-heap seed).
.PHONY: bench-solver
bench-solver:
	$(GO) run ./cmd/luqr-bench -sweep-workers BENCH_solver.json -reps 8
