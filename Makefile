GO ?= go

# tier1 is the gate every change must keep green: vet, full build, full test
# suite (which includes the docs lint in docs_test.go), and the race detector
# over the concurrent packages (the dataflow engine, the solver core that
# runs on it, and the service layer in front of both).
.PHONY: tier1
tier1: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./internal/runtime/... ./internal/core/... ./internal/service/...

# docs-lint runs the documentation checks on their own: no PLACEHOLDER
# markers in tracked *.md/*.json, no broken relative links in the curated
# doc set. `make test` runs these too (they live in docs_test.go).
.PHONY: docs-lint
docs-lint:
	$(GO) test -run 'TestDocs' .

# service-smoke builds luqr-serve, drives the job + cached-solve + graceful
# shutdown path over real HTTP, and checks /metrics agrees.
.PHONY: service-smoke
service-smoke:
	./scripts/service_smoke.sh

# bench regenerates the benchmark suite output (Tables/Figures as testing.B).
.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem .

# bench-kernels regenerates the machine-readable kernel baseline.
.PHONY: bench-kernels
bench-kernels:
	$(GO) run ./cmd/luqr-bench -json BENCH_kernels.json

# bench-solver regenerates the worker-scaling scheduler baseline
# (end-to-end wall/GFLOP/s and dispatch ns/task vs. the single-heap seed).
.PHONY: bench-solver
bench-solver:
	$(GO) run ./cmd/luqr-bench -sweep-workers BENCH_solver.json -reps 8
