GO ?= go

# tier1 is the gate every change must keep green: vet, full build, full test
# suite (which includes the docs lint in docs_test.go), and the race detector
# over every package — blas/lapack carry CPUID dispatch tables and pooled
# packing buffers, so they are race-relevant too, not just the engine and the
# layers on top of it.
.PHONY: tier1
tier1: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# docs-lint runs the documentation checks on their own: no PLACEHOLDER
# markers in tracked *.md/*.json, no broken relative links in the curated
# doc set. `make test` runs these too (they live in docs_test.go).
.PHONY: docs-lint
docs-lint:
	$(GO) test -run 'TestDocs' .

# service-smoke builds luqr-serve, drives the job + cached-solve + graceful
# shutdown path over real HTTP, and checks /metrics agrees.
.PHONY: service-smoke
service-smoke:
	./scripts/service_smoke.sh

# bench regenerates the benchmark suite output (Tables/Figures as testing.B).
.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem .

# bench-kernels regenerates the machine-readable kernel baseline.
.PHONY: bench-kernels
bench-kernels:
	$(GO) run ./cmd/luqr-bench -json BENCH_kernels.json

# bench-solver regenerates the schema-2 solver baseline at production sizes
# (default N=4096 nb=192): measured worker + tile-order sweeps, the simulated
# DAG-scaling curve, and dispatch ns/task vs. the single-heap seed.
.PHONY: bench-solver
bench-solver:
	$(GO) run ./cmd/luqr-bench -sweep-workers BENCH_solver.json -reps 3

# bench-solver-smoke is the non-gating CI check: a small sweep, the autotuner
# probe (persisted on first run, table hit on the second), and the α
# learn-then-apply loop (learned on the first run, applied from the persisted
# table on the second), then the generated file is validated against the
# schema-2 contract — which includes the mixed-precision section, so the
# validate step asserts the forced-f32 run engaged the float32 path and
# refined back into the HPL acceptance band, that it opened residency
# epochs and paid their boundary conversions (a zero there means the epoch
# counters came unwired), that the QR-stepping random operator's forced-f32
# row ran its QR updates resident with a bounded conversions-per-epoch
# ratio (per-column restacking would blow it up), and that the
# GEMM-dominated diagdom operator's auto run licensed real f32 steps.
# Numbers are not gated — only the machinery is.
.PHONY: bench-solver-smoke
bench-solver-smoke:
	$(GO) run ./cmd/luqr-bench -sweep-workers bench_solver_smoke.json -n 512 -nb 64 -reps 1
	$(GO) run ./cmd/luqr-bench -validate-solver bench_solver_smoke.json | grep -q 'mixed random f32: refined to tolerance'
	$(GO) run ./cmd/luqr-bench -validate-solver bench_solver_smoke.json | grep -Eq 'mixed random f32: .* [1-9][0-9]* epochs, [1-9][0-9]* conversions'
	$(GO) run ./cmd/luqr-bench -validate-solver bench_solver_smoke.json | grep -Eq 'mixed random f32: .* [1-9][0-9]* qr steps'
	$(GO) run ./cmd/luqr-bench -validate-solver bench_solver_smoke.json | grep -Eq 'mixed diagdom auto: .* [1-9][0-9]* f32 steps'
	$(GO) run ./cmd/luqr-bench -tune-probe -n 256 -tune-file tune_smoke.json
	$(GO) run ./cmd/luqr-bench -tune-probe -n 256 -tune-file tune_smoke.json | grep -q 'probe skipped'
	$(GO) run ./cmd/luqr-bench -alpha-learn -n 256 -nb 64 -reps 2 -tune-file tune_smoke.json
	$(GO) run ./cmd/luqr-bench -alpha-learn -n 256 -nb 64 -reps 1 -tune-file tune_smoke.json | grep -q 'applied learned α'
	rm -f bench_solver_smoke.json tune_smoke.json

# bench-diff prints a benchstat-style kernel before/after table. With no
# arguments it compares BENCH_kernels.json's committed seed baseline against
# its current section; pass OLD=path [NEW=path] to diff two generated files.
OLD ?=
NEW ?= BENCH_kernels.json
.PHONY: bench-diff
bench-diff:
	$(GO) run ./cmd/luqr-bench -diff-kernels $(NEW) $(if $(OLD),-diff-baseline $(OLD))
