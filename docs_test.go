package luqr

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"luqr/internal/core"
	"luqr/internal/runtime"
	"luqr/internal/service"
)

// Docs lint, wired into `go test ./...` so the tier-1 gate enforces it:
// no tracked markdown or JSON file may carry an unfilled PLACEHOLDER
// marker, and every relative link in the documentation set must resolve.

// skipDocsLint lists paths exempt from the placeholder scan. ISSUE.md is
// the working task file and quotes the very marker this test bans.
var skipDocsLint = map[string]bool{
	"ISSUE.md": true,
}

func docFiles(t *testing.T, exts ...string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if skipDocsLint[filepath.ToSlash(path)] {
			return nil
		}
		for _, ext := range exts {
			if strings.HasSuffix(path, ext) {
				files = append(files, path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("docs lint found no files to scan")
	}
	return files
}

// TestDocsNoPlaceholderMarkers fails when a PLACEHOLDER marker survives in
// a tracked markdown or JSON file — every number and section the docs
// promise must actually be there.
func TestDocsNoPlaceholderMarkers(t *testing.T) {
	re := regexp.MustCompile(`PLACEHOLDER[-_A-Z]*`)
	for _, path := range docFiles(t, ".md", ".json") {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := re.FindString(line); m != "" {
				t.Errorf("%s:%d: unfilled %s marker", path, i+1, m)
			}
		}
	}
}

// collectJSONTags gathers every json tag name reachable from t (following
// pointers, slices, maps, and embedded structs) into out.
func collectJSONTags(t reflect.Type, out map[string]bool, seen map[reflect.Type]bool) {
	for t.Kind() == reflect.Ptr || t.Kind() == reflect.Slice ||
		t.Kind() == reflect.Array || t.Kind() == reflect.Map {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct || seen[t] {
		return
	}
	seen[t] = true
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if tag := strings.SplitN(f.Tag.Get("json"), ",", 2)[0]; tag != "" && tag != "-" {
			out[tag] = true
		}
		collectJSONTags(f.Type, out, seen)
	}
}

// TestDocsReportFieldsExist keeps docs/API.md and the wire structs from
// drifting apart: every backticked snake_case field name the contract uses
// must exist as a json tag on one of the service's JSON types, and every
// field of the job report view (the contract's core promise) must be named
// somewhere in the document — including the residency epoch counters.
func TestDocsReportFieldsExist(t *testing.T) {
	known := map[string]bool{
		// Wire fields of unexported response structs (solveResponse and
		// healthResponse in internal/service/server.go).
		"cache_hit": true, "job_id": true,
	}
	seen := map[reflect.Type]bool{}
	for _, typ := range []reflect.Type{
		reflect.TypeOf(core.Report{}),
		reflect.TypeOf(service.ReportView{}),
		reflect.TypeOf(service.JobView{}),
		reflect.TypeOf(service.MetricsSnapshot{}),
		reflect.TypeOf(runtime.StatsSnapshot{}),
	} {
		collectJSONTags(typ, known, seen)
	}

	data, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	named := map[string]bool{}
	fieldRe := regexp.MustCompile("`([a-z][a-z0-9]*(?:_[a-z0-9]+)+)`")
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range fieldRe.FindAllStringSubmatch(line, -1) {
			named[m[1]] = true
			if !known[m[1]] {
				t.Errorf("docs/API.md:%d: field `%s` is not a json tag of any wire struct", i+1, m[1])
			}
		}
	}
	// JSON example keys and single-word backticked names count as naming a
	// field too (single words are too ambiguous for the existence check
	// above — `luqr` names an algorithm, not a field — but they do document).
	for _, re := range []*regexp.Regexp{
		regexp.MustCompile(`"([a-z][a-z0-9_]*)"\s*:`),
		regexp.MustCompile("`([a-z][a-z0-9_]*)`"),
	} {
		for _, m := range re.FindAllStringSubmatch(string(data), -1) {
			named[m[1]] = true
		}
	}
	rv := reflect.TypeOf(service.ReportView{})
	for i := 0; i < rv.NumField(); i++ {
		tag := strings.SplitN(rv.Field(i).Tag.Get("json"), ",", 2)[0]
		if tag == "" || tag == "-" {
			continue
		}
		if !named[tag] {
			t.Errorf("docs/API.md never names report field %q (service.ReportView.%s)", tag, rv.Field(i).Name)
		}
	}
	// The epoch counters the residency store introduced must stay visible on
	// both sides: named in the contract and tagged on core.Report.
	reportTags := map[string]bool{}
	collectJSONTags(reflect.TypeOf(core.Report{}), reportTags, map[reflect.Type]bool{})
	for _, f := range []string{"f32_epochs", "conversions"} {
		if !named[f] {
			t.Errorf("docs/API.md never names epoch counter %q", f)
		}
		if !reportTags[f] {
			t.Errorf("core.Report has no json tag %q", f)
		}
	}
}

// TestDocsLinksResolve checks every relative markdown link in the curated
// documentation set points at a file or directory that exists. PAPERS.md
// and SNIPPETS.md are excluded: they quote retrieved external material
// whose links refer to their source repositories, not to this tree.
func TestDocsLinksResolve(t *testing.T) {
	linkRe := regexp.MustCompile(`\]\(([^)#][^)]*)\)`)
	var docSet []string
	for _, path := range docFiles(t, ".md") {
		base := filepath.ToSlash(path)
		if base == "PAPERS.md" || base == "SNIPPETS.md" {
			continue
		}
		docSet = append(docSet, path)
	}
	for _, path := range docSet {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue // external
				}
				target = strings.SplitN(target, "#", 2)[0]
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: broken link %q (%v)", path, i+1, m[1],
						fmt.Errorf("stat %s: missing", resolved))
				}
			}
		}
	}
}
