package luqr

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Docs lint, wired into `go test ./...` so the tier-1 gate enforces it:
// no tracked markdown or JSON file may carry an unfilled PLACEHOLDER
// marker, and every relative link in the documentation set must resolve.

// skipDocsLint lists paths exempt from the placeholder scan. ISSUE.md is
// the working task file and quotes the very marker this test bans.
var skipDocsLint = map[string]bool{
	"ISSUE.md": true,
}

func docFiles(t *testing.T, exts ...string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if skipDocsLint[filepath.ToSlash(path)] {
			return nil
		}
		for _, ext := range exts {
			if strings.HasSuffix(path, ext) {
				files = append(files, path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("docs lint found no files to scan")
	}
	return files
}

// TestDocsNoPlaceholderMarkers fails when a PLACEHOLDER marker survives in
// a tracked markdown or JSON file — every number and section the docs
// promise must actually be there.
func TestDocsNoPlaceholderMarkers(t *testing.T) {
	re := regexp.MustCompile(`PLACEHOLDER[-_A-Z]*`)
	for _, path := range docFiles(t, ".md", ".json") {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := re.FindString(line); m != "" {
				t.Errorf("%s:%d: unfilled %s marker", path, i+1, m)
			}
		}
	}
}

// TestDocsLinksResolve checks every relative markdown link in the curated
// documentation set points at a file or directory that exists. PAPERS.md
// and SNIPPETS.md are excluded: they quote retrieved external material
// whose links refer to their source repositories, not to this tree.
func TestDocsLinksResolve(t *testing.T) {
	linkRe := regexp.MustCompile(`\]\(([^)#][^)]*)\)`)
	var docSet []string
	for _, path := range docFiles(t, ".md") {
		base := filepath.ToSlash(path)
		if base == "PAPERS.md" || base == "SNIPPETS.md" {
			continue
		}
		docSet = append(docSet, path)
	}
	for _, path := range docSet {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue // external
				}
				target = strings.SplitN(target, "#", 2)[0]
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: broken link %q (%v)", path, i+1, m[1],
						fmt.Errorf("stat %s: missing", resolved))
				}
			}
		}
	}
}
