// Multiple right-hand sides and iterative refinement: factor once, solve
// many times by replaying the stored transformations (the "second pass" of
// §II-D.1), and recover accuracy from a deliberately unstable fast
// factorization with iterative refinement.
//
//	go run ./examples/multiple_rhs
package main

import (
	"fmt"
	"log"
	"math/rand"

	"luqr"
)

func main() {
	const n, nb = 320, 40
	rng := rand.New(rand.NewSource(9))
	a, err := luqr.GenerateMatrix("random", n, rng)
	if err != nil {
		log.Fatal(err)
	}
	b0 := make([]float64, n)
	for i := range b0 {
		b0[i] = rng.NormFloat64()
	}

	// Factor once with the hybrid.
	res, err := luqr.Solve(a, b0, luqr.Config{
		Alg:       luqr.AlgLUQR,
		NB:        nb,
		Grid:      luqr.NewGrid(2, 2),
		Criterion: luqr.MaxCriterion(100),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorization: %s\n", res.Report)

	// Solve three more systems against the same factors — O(N²) each.
	for trial := 1; trial <= 3; trial++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := res.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("extra rhs %d: HPL3 = %.3g\n", trial, luqr.HPL3(a, x, b))
	}

	// Iterative refinement: take the FAST but risky route (LU with no
	// pivoting across tiles), then repair the error with two rounds of
	// refinement through the stored factors.
	fast, err := luqr.Solve(a, b0, luqr.Config{Alg: luqr.AlgLUNoPiv, NB: nb})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLU NoPiv:            HPL3 = %.3g (growth %.3g)\n", fast.Report.HPL3, fast.Report.Growth)
	refined, err := fast.Refine(a, b0, fast.X, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 2 refinements: HPL3 = %.3g\n", luqr.HPL3(a, refined, b0))
	fmt.Println("\nRefinement buys back the stability that tile-local pivoting lost —")
	fmt.Println("as long as the growth is moderate; the hybrid's criterion is the")
	fmt.Println("systematic way to guarantee that precondition.")
}
