// Quickstart: solve a dense linear system with the hybrid LU-QR algorithm
// through the public API, and compare its stability/performance trade-off
// against the pure LU and pure QR extremes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"luqr"
)

func main() {
	// Build a random 480×480 system Ax = b (12×12 tiles of order 40).
	const n, nb = 480, 40
	rng := rand.New(rand.NewSource(42))
	a, err := luqr.GenerateMatrix("random", n, rng)
	if err != nil {
		log.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j, v := range row {
			b[i] += v * xTrue[j]
		}
	}

	// Solve with the hybrid: LU steps whenever the Max criterion says the
	// diagonal domain can eliminate the panel stably, QR steps otherwise.
	cfg := luqr.Config{
		Alg:       luqr.AlgLUQR,
		NB:        nb,
		Grid:      luqr.NewGrid(2, 2), // virtual 2×2 process grid
		Criterion: luqr.MaxCriterion(100),
	}
	res, err := luqr.Solve(a, b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report
	fmt.Printf("hybrid LU-QR: %d LU steps, %d QR steps (%.0f%% LU)\n", r.LUSteps, r.QRSteps, 100*r.FracLU())
	fmt.Printf("backward error (HPL3): %.3g   growth factor: %.3g\n", r.HPL3, r.Growth)

	maxErr := 0.0
	for i := range xTrue {
		if d := math.Abs(res.X[i] - xTrue[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max |x − x_true| = %.3g\n\n", maxErr)

	// The two extremes for comparison: α = ∞ (always LU, fast but riskier)
	// and α = 0 (always QR, always stable, twice the flops).
	for _, c := range []struct {
		name string
		crit luqr.Criterion
	}{
		{"always LU (α=∞)", luqr.AlwaysLU()},
		{"always QR (α=0)", luqr.AlwaysQR()},
	} {
		cfg.Criterion = c.crit
		res, err := luqr.Solve(a, b, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s HPL3=%.3g  wall=%v\n", c.name, res.Report.HPL3, res.Report.WallTime)
	}
}
