// Distributed: factor the same system on several virtual process grids and
// replay the recorded task graphs on the Dancer machine model (16 nodes ×
// 8 cores, Infiniband) to see how the 2-D block-cyclic distribution, the
// reduction trees, and the criterion exchange shape distributed
// performance — the substitute for the paper's cluster runs.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/dist"
	"luqr/internal/matgen"
	"luqr/internal/sim"
	"luqr/internal/tile"
)

func main() {
	const n, nb = 640, 40
	rng := rand.New(rand.NewSource(3))
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	machine := sim.Dancer()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "grid\talgorithm\tsim time\tGFLOP/s\tmessages\tMB moved\t%LU")
	for _, g := range []tile.Grid{tile.NewGrid(1, 1), tile.NewGrid(4, 1), tile.NewGrid(4, 4)} {
		for _, alg := range []core.Algorithm{core.LUQR, core.LUPP, core.HQR} {
			res, err := core.Run(a, b, core.Config{
				Alg: alg, NB: nb, Grid: g, Trace: true,
				Criterion: criteria.Max{Alpha: 100},
			})
			if err != nil {
				log.Fatal(err)
			}
			s := sim.Simulate(res.Report.Trace, machine, nil)
			fmt.Fprintf(w, "%dx%d\t%s\t%.4fs\t%.1f\t%d\t%.2f\t%.0f%%\n",
				g.P, g.Q, alg, s.Makespan,
				res.Report.FakeGFlops(s.Makespan),
				s.Messages, float64(s.CommBytes)/1e6,
				100*res.Report.FracLU())
		}
	}
	w.Flush()

	// The criterion data travels through a Bruck all-reduce among the nodes
	// hosting panel tiles (§III); show the schedule for the first panel.
	g := tile.NewGrid(4, 4)
	nodes := dist.PanelNodes(g, 0, n/nb)
	msgs := dist.BruckAllReduce(nodes, 8*(nb+1))
	fmt.Printf("\npanel 0 on the 4x4 grid spans nodes %v\n", nodes)
	fmt.Printf("Bruck all-reduce: %d rounds, %d messages of %d bytes\n",
		dist.AllReduceRounds(len(nodes)), len(msgs), 8*(nb+1))
}
