// Special matrices: run the §V-C experiment in miniature — pathological
// matrices on which plain LU (even with partial pivoting) loses digits or
// breaks down, and watch the robustness criteria steer the hybrid to QR
// steps exactly where needed.
//
//	go run ./examples/special_matrices
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/matgen"
	"luqr/internal/tile"
)

func main() {
	const n, nb = 320, 40
	grid := tile.NewGrid(4, 1) // tall grid, like the paper's 16×1 in Fig. 3

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "matrix\tLU NoPiv HPL3\tLUQR(max) HPL3\t%LU steps\tHQR HPL3")
	for _, name := range []string{"wilkinson", "foster", "wright", "fiedler", "dorr", "lehmer"} {
		ent, err := matgen.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		a := ent.Gen(n, rng)
		b := matgen.RandomVector(n, rng)

		nopiv, err := core.Run(a, b, core.Config{Alg: core.LUNoPiv, NB: nb, Grid: grid})
		if err != nil {
			log.Fatal(err)
		}
		hybrid, err := core.Run(a, b, core.Config{
			Alg: core.LUQR, NB: nb, Grid: grid,
			Criterion: criteria.Max{Alpha: 30},
		})
		if err != nil {
			log.Fatal(err)
		}
		hqr, err := core.Run(a, b, core.Config{Alg: core.HQR, NB: nb, Grid: grid})
		if err != nil {
			log.Fatal(err)
		}

		np := fmt.Sprintf("%.3g", nopiv.Report.HPL3)
		if nopiv.Report.Breakdown {
			np = "BREAKDOWN"
		}
		fmt.Fprintf(w, "%s\t%s\t%.3g\t%.0f%%\t%.3g\n",
			name, np, hybrid.Report.HPL3, 100*hybrid.Report.FracLU(), hqr.Report.HPL3)
	}
	w.Flush()
	fmt.Println("\nThe hybrid matches HQR's stability on the pathological rows while")
	fmt.Println("still taking LU steps wherever the criterion deems them safe.")
}
