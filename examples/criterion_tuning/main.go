// Criterion tuning: sweep the robustness threshold α for each criterion on
// one matrix and print the stability/performance trade-off curve — the
// single-matrix version of the paper's Figure 2, useful for picking α for a
// workload (the paper leaves auto-tuning α as future work, §VII).
//
//	go run ./examples/criterion_tuning
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/matgen"
	"luqr/internal/sim"
	"luqr/internal/tile"
)

func main() {
	const n, nb = 480, 40
	rng := rand.New(rand.NewSource(11))
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	grid := tile.NewGrid(2, 2)
	machine := sim.Dancer()

	sweeps := []struct {
		criterion string
		alphas    []float64
	}{
		{"max", []float64{0, 1, 3, 10, 30, 100, math.Inf(1)}},
		{"sum", []float64{0, 1, 3, 10, 30, 100, math.Inf(1)}},
		{"mumps", []float64{0, 0.5, 1, 2.1, 5, math.Inf(1)}},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "criterion\talpha\t%LU\tHPL3\tgrowth\tsim GFLOP/s")
	for _, sw := range sweeps {
		for _, alpha := range sw.alphas {
			crit, err := criteria.Parse(sw.criterion, alpha)
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Run(a, b, core.Config{
				Alg: core.LUQR, NB: nb, Grid: grid, Criterion: crit, Trace: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			s := sim.Simulate(res.Report.Trace, machine, nil)
			alphaStr := fmt.Sprintf("%g", alpha)
			if math.IsInf(alpha, 1) {
				alphaStr = "inf"
			}
			fmt.Fprintf(w, "%s\t%s\t%.0f%%\t%.3g\t%.3g\t%.1f\n",
				sw.criterion, alphaStr, 100*res.Report.FracLU(),
				res.Report.HPL3, res.Report.Growth,
				res.Report.FakeGFlops(s.Makespan))
		}
	}
	w.Flush()
	fmt.Println("\nSmaller α ⇒ stricter stability ⇒ more QR steps ⇒ lower GFLOP/s;")
	fmt.Println("α = ∞ disables the criterion and recovers domain-pivoted LU.")
}
