// Package luqr's top-level benchmarks regenerate the paper's evaluation
// artifacts as testing.B targets:
//
//	BenchmarkTable1Kernel*    Table I   per-kernel costs
//	BenchmarkTable2*          Table II  the algorithm performance ladder
//	BenchmarkFig2Criterion*   Figure 2  criterion sweeps (performance axis)
//	BenchmarkFig3Special*     Figure 3  special-matrix runs
//	BenchmarkAblation*        DESIGN.md ablations: reduction trees, pivot
//	                          scope, decision-path overhead
//	BenchmarkPanel*           blocked GETRF/GEQRT panels at production tile
//	                          orders (GFLOP/s reported per op)
//	BenchmarkSolverProduction end-to-end hybrid solve at nb=192
//
// Absolute numbers are pure-Go on the local host; the shapes (LU vs QR cost
// ratio, tree critical paths, criterion overhead) are the reproduction
// targets. Run with: go test -bench=. -benchmem .
package luqr

import (
	"math"
	"math/rand"
	"testing"

	"luqr/internal/blas"
	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/flops"
	"luqr/internal/lapack"
	"luqr/internal/mat"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/sim"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

const (
	benchNB = 40
	benchNT = 8
	benchN  = benchNB * benchNT
)

func benchSystem(seed int64) (*mat.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	return matgen.Random(benchN, rng), matgen.RandomVector(benchN, rng)
}

func benchTile(rng *rand.Rand, nb int) *mat.Matrix {
	m := mat.New(nb, nb)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func benchUpper(rng *rand.Rand, nb int) *mat.Matrix {
	m := benchTile(rng, nb)
	for i := 0; i < nb; i++ {
		for j := 0; j < i; j++ {
			m.Set(i, j, 0)
		}
		m.Set(i, i, m.At(i, i)+float64(nb))
	}
	return m
}

// --- Table I: kernel benchmarks -----------------------------------------

const kernelNB = 128

func BenchmarkTable1KernelGETRF(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := benchTile(rng, kernelNB)
	work := a.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(a)
		if _, err := lapack.Getrf(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1KernelTRSM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	t := benchUpper(rng, kernelNB)
	c := benchTile(rng, kernelNB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t, c)
	}
}

func benchGemmNB(b *testing.B, nb int) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	x, y, c := benchTile(rng, nb), benchTile(rng, nb), benchTile(rng, nb)
	b.SetBytes(int64(nb * nb * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, x, y, 1, c)
	}
	b.StopTimer()
	gflops := 2 * float64(nb) * float64(nb) * float64(nb) / 1e9
	b.ReportMetric(gflops*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
}

func BenchmarkTable1KernelGEMM(b *testing.B)    { benchGemmNB(b, kernelNB) }
func BenchmarkTable1KernelGEMM256(b *testing.B) { benchGemmNB(b, 256) }

func BenchmarkTable1KernelGEQRT(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := benchTile(rng, kernelNB)
	t := mat.New(kernelNB, kernelNB)
	work := a.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(a)
		lapack.Geqrt(work, t)
	}
}

func BenchmarkTable1KernelTSQRT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	r0, a0 := benchUpper(rng, kernelNB), benchTile(rng, kernelNB)
	r, a, t := r0.Clone(), a0.Clone(), mat.New(kernelNB, kernelNB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.CopyFrom(r0)
		a.CopyFrom(a0)
		lapack.Tsqrt(r, a, t)
	}
}

func BenchmarkTable1KernelTSMQR(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	r, v, t := benchUpper(rng, kernelNB), benchTile(rng, kernelNB), mat.New(kernelNB, kernelNB)
	lapack.Tsqrt(r, v, t)
	c1, c2 := benchTile(rng, kernelNB), benchTile(rng, kernelNB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lapack.Tsmqr(blas.Trans, v, t, c1, c2)
	}
}

func BenchmarkTable1KernelUNMQR(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	v, t := benchTile(rng, kernelNB), mat.New(kernelNB, kernelNB)
	lapack.Geqrt(v, t)
	c := benchTile(rng, kernelNB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lapack.Unmqr(blas.Trans, v, t, c)
	}
}

func BenchmarkTable1KernelTTQRT(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	r10, r20 := benchUpper(rng, kernelNB), benchUpper(rng, kernelNB)
	r1, r2, t := r10.Clone(), r20.Clone(), mat.New(kernelNB, kernelNB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1.CopyFrom(r10)
		r2.CopyFrom(r20)
		lapack.Ttqrt(r1, r2, t)
	}
}

func BenchmarkTable1KernelTTMQR(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	r1, r2, t := benchUpper(rng, kernelNB), benchUpper(rng, kernelNB), mat.New(kernelNB, kernelNB)
	lapack.Ttqrt(r1, r2, t)
	c1, c2 := benchTile(rng, kernelNB), benchTile(rng, kernelNB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lapack.Ttmqr(blas.Trans, r2, t, c1, c2)
	}
}

// --- Blocked panel kernels at production tile orders ----------------------
//
// The blocked (ib-partitioned) GETRF/GEQRT forms route the O(nb³) panel work
// through the packed GEMM path; these benchmarks report GFLOP/s directly so
// the panel-vs-update gap is visible from `go test -bench Panel`.

func benchGetrfNB(b *testing.B, nb int) {
	b.Helper()
	rng := rand.New(rand.NewSource(10))
	a := benchTile(rng, nb)
	work := a.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(a)
		if _, err := lapack.Getrf(work); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	gflops := 2.0 / 3.0 * float64(nb) * float64(nb) * float64(nb) / 1e9
	b.ReportMetric(gflops*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
}

func BenchmarkPanelGETRF128(b *testing.B) { benchGetrfNB(b, 128) }
func BenchmarkPanelGETRF192(b *testing.B) { benchGetrfNB(b, 192) }
func BenchmarkPanelGETRF256(b *testing.B) { benchGetrfNB(b, 256) }

func benchGeqrtNB(b *testing.B, nb int) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	a := benchTile(rng, nb)
	t := mat.New(nb, nb)
	work := a.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(a)
		lapack.Geqrt(work, t)
	}
	b.StopTimer()
	gflops := 4.0 / 3.0 * float64(nb) * float64(nb) * float64(nb) / 1e9
	b.ReportMetric(gflops*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
}

func BenchmarkPanelGEQRT128(b *testing.B) { benchGeqrtNB(b, 128) }
func BenchmarkPanelGEQRT192(b *testing.B) { benchGeqrtNB(b, 192) }

// BenchmarkSolverProductionTiles is the end-to-end headline shape at a
// production tile order (the BENCH_solver.json configuration scaled down to
// bench-friendly wall time), reporting sustained GFLOP/s per op.
func BenchmarkSolverProductionTiles(b *testing.B) {
	const n, nb = 1536, 192
	rng := rand.New(rand.NewSource(12))
	a := matgen.Random(n, rng)
	rhs := matgen.RandomVector(n, rng)
	cfg := core.Config{
		Alg: core.LUQR, NB: nb, Grid: tile.NewGrid(2, 2),
		Criterion: criteria.Random{Alpha: 50}, Seed: 1,
		IntraTree: tree.FlatTS, InterTree: tree.Fibonacci,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(a, rhs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(res.Report.HPL3) {
			b.Fatal("NaN result")
		}
	}
	b.StopTimer()
	gflops := flops.GFlops(flops.LUTotal(n), b.Elapsed().Seconds()/float64(b.N))
	b.ReportMetric(gflops, "GFLOP/s")
}

// --- Table II: the algorithm ladder --------------------------------------

func benchRun(b *testing.B, cfg core.Config) {
	b.Helper()
	a, rhs := benchSystem(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(a, rhs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(res.Report.HPL3) {
			b.Fatal("NaN result")
		}
	}
}

func BenchmarkTable2LUNoPiv(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUNoPiv, NB: benchNB, Grid: tile.NewGrid(2, 2)})
}

func BenchmarkTable2LUIncPiv(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUIncPiv, NB: benchNB, Grid: tile.NewGrid(2, 2)})
}

func BenchmarkTable2LUQRAlphaInf(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Always{}})
}

func BenchmarkTable2LUQRAlphaMid(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 100}})
}

func BenchmarkTable2LUQRAlphaZero(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Never{}})
}

func BenchmarkTable2HQR(b *testing.B) {
	benchRun(b, core.Config{Alg: core.HQR, NB: benchNB, Grid: tile.NewGrid(2, 2)})
}

func BenchmarkTable2LUPP(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUPP, NB: benchNB, Grid: tile.NewGrid(2, 2)})
}

// --- Figure 2: criterion cost --------------------------------------------

func BenchmarkFig2CriterionMax(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 100}})
}

func BenchmarkFig2CriterionSum(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Sum{Alpha: 100}})
}

func BenchmarkFig2CriterionMUMPS(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.MUMPS{Alpha: 2.1}})
}

func BenchmarkFig2CriterionRandom(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Random{Alpha: 50}, Seed: 1})
}

// --- Figure 3: special matrices -------------------------------------------

func benchSpecial(b *testing.B, name string) {
	b.Helper()
	ent, err := matgen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := ent.Gen(benchN, rng)
	rhs := matgen.RandomVector(benchN, rng)
	cfg := core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(4, 1), Criterion: criteria.Max{Alpha: 30}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(a, rhs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3SpecialWilkinson(b *testing.B) { benchSpecial(b, "wilkinson") }
func BenchmarkFig3SpecialFoster(b *testing.B)    { benchSpecial(b, "foster") }
func BenchmarkFig3SpecialFiedler(b *testing.B)   { benchSpecial(b, "fiedler") }
func BenchmarkFig3SpecialDemmel(b *testing.B)    { benchSpecial(b, "demmel") }

// --- Ablations -------------------------------------------------------------

func benchTreeAblation(b *testing.B, intra, inter tree.Tree) {
	b.Helper()
	benchRun(b, core.Config{Alg: core.HQR, NB: benchNB, Grid: tile.NewGrid(4, 1), IntraTree: intra, InterTree: inter})
}

func BenchmarkAblationTreeFlatTS(b *testing.B)    { benchTreeAblation(b, tree.FlatTS, tree.FlatTT) }
func BenchmarkAblationTreeBinary(b *testing.B)    { benchTreeAblation(b, tree.Binary, tree.Binary) }
func BenchmarkAblationTreeGreedyFib(b *testing.B) { benchTreeAblation(b, tree.Greedy, tree.Fibonacci) }

func BenchmarkAblationScopeTile(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Scope: core.ScopeTile, Criterion: criteria.Always{}})
}

func BenchmarkAblationScopeDomain(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(2, 2), Scope: core.ScopeDomain, Criterion: criteria.Always{}})
}

// --- Infrastructure ---------------------------------------------------------

// BenchmarkRuntimeTaskThroughput measures the task engine's scheduling
// overhead with trivial tasks on a dependency chain mix.
func BenchmarkRuntimeTaskThroughput(b *testing.B) {
	e := runtime.NewEngine(runtime.Config{Workers: 4})
	defer e.Close()
	hs := make([]*runtime.Handle, 16)
	for i := range hs {
		hs[i] = e.NewHandle("h", 8, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit(runtime.TaskSpec{
			Accesses: []runtime.Access{runtime.W(hs[i%16])},
			Run:      func() {},
		})
	}
	e.Wait()
}

// BenchmarkSimReplay measures the discrete-event simulator on a real hybrid
// trace.
func BenchmarkSimReplay(b *testing.B) {
	a, rhs := benchSystem(2)
	res, err := core.Run(a, rhs, core.Config{Alg: core.LUQR, NB: benchNB, Grid: tile.NewGrid(4, 4), Trace: true, Criterion: criteria.Max{Alpha: 100}})
	if err != nil {
		b.Fatal(err)
	}
	m := sim.Dancer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simulate(res.Report.Trace, m, nil)
	}
}

// --- Extensions: CALU and the §II-C variants --------------------------------

func BenchmarkExtensionCALU(b *testing.B) {
	benchRun(b, core.Config{Alg: core.CALU, NB: benchNB, Grid: tile.NewGrid(2, 2)})
}

func BenchmarkExtensionVariantA2(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, Variant: core.VarA2, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 500}})
}

func BenchmarkExtensionVariantB1(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, Variant: core.VarB1, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 500}})
}

func BenchmarkExtensionVariantB2(b *testing.B) {
	benchRun(b, core.Config{Alg: core.LUQR, Variant: core.VarB2, NB: benchNB, Grid: tile.NewGrid(2, 2), Criterion: criteria.Max{Alpha: 500}})
}

func BenchmarkExtensionHLU(b *testing.B) {
	benchRun(b, core.Config{Alg: core.HLU, NB: benchNB, Grid: tile.NewGrid(2, 2)})
}
