package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/tile"
	"luqr/internal/tree"
)

func main() {
	mode := flag.String("mode", "solver", "solver or dispatch")
	workers := flag.Int("workers", 8, "")
	reps := flag.Int("reps", 3, "")
	flag.Parse()
	if *mode == "dispatch" {
		best := 0.0
		for r := 0; r < *reps; r++ {
			e := runtime.NewEngine(runtime.Config{Workers: *workers})
			hs := make([]*runtime.Handle, 64)
			for i := range hs {
				hs[i] = e.NewHandle("x", 8, 0)
			}
			start := time.Now()
			for i := 0; i < 200000; i++ {
				e.Submit(runtime.TaskSpec{Name: "t", Accesses: []runtime.Access{runtime.W(hs[i%64])}})
			}
			e.Wait()
			ns := float64(time.Since(start).Nanoseconds()) / 200000
			e.Close()
			if best == 0 || ns < best {
				best = ns
			}
		}
		fmt.Printf("%.1f\n", best)
		return
	}
	rng := rand.New(rand.NewSource(1))
	a := matgen.Random(768, rng)
	b := matgen.RandomVector(768, rng)
	best := 999.0
	for r := 0; r < *reps; r++ {
		res, err := core.Run(a, b, core.Config{
			Alg: core.LUQR, NB: 16, Grid: tile.NewGrid(2, 2),
			Criterion: criteria.Random{Alpha: 50}, Seed: 1, Workers: *workers,
			IntraTree: tree.FlatTS, InterTree: tree.Fibonacci,
		})
		if err != nil {
			panic(err)
		}
		if w := res.Report.WallTime.Seconds(); w < best {
			best = w
		}
	}
	fmt.Printf("%.4f\n", best)
}
