// Command luqr factors and solves one dense linear system Ax = b with a
// chosen algorithm, criterion and process grid, and reports the paper's
// stability and performance metrics for the run.
//
// Examples:
//
//	luqr -alg luqr -criterion max -alpha 100 -n 960 -nb 40 -p 4 -q 4
//	luqr -alg hqr -matrix wilkinson -n 480 -nb 40
//	luqr -alg lunopiv -matrix fiedler -n 320 -nb 40 -sim
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/dist"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/sim"
	"luqr/internal/tile"
	"luqr/internal/tree"

	"math/rand"
	goruntime "runtime"
	"sort"
)

func main() {
	var (
		algName   = flag.String("alg", "luqr", "algorithm: luqr, lunopiv, luincpiv, lupp, hqr, calu, hlu")
		matName   = flag.String("matrix", "random", "matrix: random, diagdom, or a Table III name (hilb, wilkinson, foster, ...)")
		n         = flag.Int("n", 480, "matrix order N (multiple of nb)")
		nb        = flag.Int("nb", 40, "tile order")
		p         = flag.Int("p", 4, "process grid rows")
		q         = flag.Int("q", 4, "process grid columns")
		critName  = flag.String("criterion", "max", "criterion for -alg luqr: max, sum, mumps, random, alwayslu, alwaysqr")
		alpha     = flag.Float64("alpha", 100, "criterion threshold α (inf allowed)")
		scope     = flag.String("scope", "domain", "LU pivot scope: domain or tile")
		variant   = flag.String("variant", "a1", "LU-step variant (§II-C): a1, a2, b1, b2")
		precName  = flag.String("precision", "f64", "kernel precision: f64, auto (criterion margin picks f32 per step), f32")
		intraName = flag.String("intra", "greedy", "intra-node reduction tree: flatts, flattt, binary, greedy, fibonacci")
		interName = flag.String("inter", "fibonacci", "inter-node reduction tree")
		workers   = flag.Int("workers", 0, "runtime workers (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 1, "random seed (matrix and random criterion)")
		simulate  = flag.Bool("sim", false, "replay the trace on the Dancer machine model")
		profile   = flag.Bool("profile", false, "with -sim: print parallelism, utilization, and the kernel-time breakdown")
		timeline  = flag.String("timeline", "", "write the measured task timeline as Chrome trace-event JSON to this path (open in chrome://tracing or Perfetto)")
		stats     = flag.Bool("stats", false, "print the measured per-kernel stats table (count, total, mean, max, worker utilization, critical path)")
		verbose   = flag.Bool("v", false, "print per-step decisions")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "luqr:", err)
		os.Exit(1)
	}

	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		fail(err)
	}
	crit, err := criteria.Parse(*critName, *alpha)
	if err != nil {
		fail(err)
	}
	intra, err := tree.ParseTree(*intraName)
	if err != nil {
		fail(err)
	}
	inter, err := tree.ParseTree(*interName)
	if err != nil {
		fail(err)
	}
	ent, err := matgen.ByName(*matName)
	if err != nil {
		fail(err)
	}
	sc := core.ScopeDomain
	if *scope == "tile" {
		sc = core.ScopeTile
	}
	vr, err := core.ParseVariant(*variant)
	if err != nil {
		fail(err)
	}
	prec, err := core.ParsePrecision(*precName)
	if err != nil {
		fail(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	a := ent.Gen(*n, rng)
	b := matgen.RandomVector(*n, rng)

	cfg := core.Config{
		Alg: alg, NB: *nb, Grid: tile.NewGrid(*p, *q),
		Criterion: crit, Scope: sc, Variant: vr, Precision: prec,
		IntraTree: intra, InterTree: inter,
		Workers: *workers, Seed: *seed,
		Trace: *simulate || *stats || *timeline != "",
	}
	res, err := core.Run(a, b, cfg)
	if err != nil {
		fail(err)
	}
	r := res.Report
	fmt.Println(r)
	wall := r.WallTime.Seconds()
	nw := cfg.Workers
	if nw <= 0 {
		nw = goruntime.GOMAXPROCS(0)
	}
	fmt.Printf("local: %.0f MFLOP/s fake, %.0f MFLOP/s true (wall %.3fs, %d workers)\n",
		1e3*r.FakeGFlops(wall), 1e3*r.TrueGFlops(wall), wall, nw)

	if *stats {
		runtime.ComputeStats(r.Trace).WriteTable(os.Stdout)
		c := r.Sched
		fmt.Printf("scheduler: %d lane, %d local, %d stolen (local-hit rate %.1f%%), %d remote releases, %d parks\n",
			c.LaneHits, c.LocalHits, c.Steals, 100*c.LocalHitRate(), c.RemoteReleases, c.Parks)
	}
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err == nil {
			err = runtime.WriteChromeTrace(f, r.Trace)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("timeline: wrote %s (%d tasks)\n", *timeline, len(r.Trace))
	}

	if *verbose {
		for k, d := range r.Decisions {
			step := "QR"
			if d {
				step = "LU"
			}
			fmt.Printf("  step %3d: %s\n", k, step)
		}
	}

	if *simulate {
		m := sim.Dancer()
		s := sim.Simulate(r.Trace, m, nil)
		fmt.Printf("simulated on %s (%d nodes × %d cores, peak %.0f GFLOP/s):\n",
			m.Name, m.Nodes, m.CoresPerNode, m.PeakGFlops())
		fmt.Printf("  time %.4fs, fake %.1f GFLOP/s (%.1f%% peak), true %.1f GFLOP/s\n",
			s.Makespan, r.FakeGFlops(s.Makespan), 100*r.FakeGFlops(s.Makespan)/m.PeakGFlops(), r.TrueGFlops(s.Makespan))
		fmt.Printf("  %d messages, %.2f MB moved, critical path %.4fs\n",
			s.Messages, float64(s.CommBytes)/1e6, sim.CriticalPath(r.Trace, m.CoreGFlops))
		nodes := dist.PanelNodes(cfg.Grid, 0, *n / *nb)
		fmt.Printf("  panel 0 spans %d node(s); criterion all-reduce: %d rounds\n",
			len(nodes), dist.AllReduceRounds(len(nodes)))
		if *profile {
			totalCores := float64(m.Nodes * m.CoresPerNode)
			fmt.Printf("  %d tasks, average parallelism %.1f, utilization %.1f%%\n",
				len(r.Trace), s.ComputeTime/s.Makespan, 100*s.ComputeTime/(s.Makespan*totalCores))
			fmt.Println("  core-seconds by kernel:")
			kernels := make([]string, 0, len(s.KernelTime))
			for kname := range s.KernelTime {
				kernels = append(kernels, kname)
			}
			sort.Slice(kernels, func(i, j int) bool { return s.KernelTime[kernels[i]] > s.KernelTime[kernels[j]] })
			for _, kname := range kernels {
				fmt.Printf("    %-8s %8.4fs (%.1f%%)\n", kname, s.KernelTime[kname], 100*s.KernelTime[kname]/s.ComputeTime)
			}
		}
	}
	if math.IsNaN(r.HPL3) || r.Breakdown {
		os.Exit(2)
	}
}
