// Command luqr-dag runs a small hybrid factorization and emits its task
// graph as Graphviz DOT — the reproduction of the paper's Figure 1, showing
// the Backup Panel → LU On Panel → Decide → Propagate structure and the
// selected LU or QR branch of each step.
//
//	luqr-dag -nt 3 -decide qr > step.dot && dot -Tsvg step.dot -o step.svg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/matgen"
	"luqr/internal/runtime"
	"luqr/internal/tile"
)

func main() {
	var (
		nt      = flag.Int("nt", 3, "tiles per row/column")
		nb      = flag.Int("nb", 8, "tile order")
		p       = flag.Int("p", 2, "grid rows")
		q       = flag.Int("q", 1, "grid columns")
		decide  = flag.String("decide", "criterion", "force the branch: lu, qr, or criterion")
		alpha   = flag.Float64("alpha", 100, "criterion threshold when -decide criterion")
		step    = flag.Int("step", -1, "restrict the output to one elimination step (-1: all)")
		cluster = flag.Bool("cluster", true, "cluster tasks by node")
	)
	flag.Parse()

	var crit criteria.Criterion
	switch *decide {
	case "lu":
		crit = criteria.Always{}
	case "qr":
		crit = criteria.Never{}
	case "criterion":
		crit = criteria.Max{Alpha: *alpha}
	default:
		fmt.Fprintln(os.Stderr, "luqr-dag: -decide must be lu, qr or criterion")
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(1))
	n := *nt * *nb
	a := matgen.Random(n, rng)
	b := matgen.RandomVector(n, rng)
	res, err := core.Run(a, b, core.Config{
		Alg: core.LUQR, NB: *nb, Grid: tile.NewGrid(*p, *q),
		Criterion: crit, Trace: true, Workers: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "luqr-dag:", err)
		os.Exit(1)
	}
	trace := res.Report.Trace
	if *step >= 0 {
		trace = filterStep(trace, *step)
	}
	fmt.Print(runtime.DOT(trace, *cluster))
}

// filterStep keeps the tasks of one elimination step, identified by the
// "(k" / "(i,piv,k" suffix conventions of the task names, plus every task a
// kept task depends on directly (so the cut graph stays connected).
func filterStep(trace []*runtime.TraceTask, k int) []*runtime.TraceTask {
	keep := map[int]bool{}
	var out []*runtime.TraceTask
	tag := fmt.Sprintf("(%d", k)
	for _, t := range trace {
		if strings.Contains(t.Name, tag+")") || strings.Contains(t.Name, tag+",") ||
			strings.HasSuffix(t.Name, fmt.Sprintf(",%d)", k)) {
			keep[t.ID] = true
			out = append(out, t)
		}
	}
	// Drop dependency edges that leave the kept set.
	for _, t := range out {
		var deps []int
		for _, d := range t.Deps {
			if keep[d] {
				deps = append(deps, d)
			}
		}
		t.Deps = deps
	}
	return out
}
