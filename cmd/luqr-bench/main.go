// Command luqr-bench regenerates the tables and figures of the paper's
// evaluation section (§V):
//
//	luqr-bench -exp table1              Table I   kernel operation counts
//	luqr-bench -exp fig2                Figure 2  criteria sweeps on random matrices
//	luqr-bench -exp table2              Table II  performance ladder (Max criterion)
//	luqr-bench -exp fig3                Figure 3  stability on special matrices
//	luqr-bench -exp table3              Table III the special-matrix set
//	luqr-bench -exp overhead            §V-B      decision-path overhead
//	luqr-bench -exp ablation            DESIGN.md trees / pivot scope / LU variants
//	luqr-bench -exp tune                §VII      auto-tune α per criterion
//	luqr-bench -exp calu                §VI-D     CALU (tournament pivoting) comparison
//	luqr-bench -exp kappa               extension conditioning sweep (randsvd)
//	luqr-bench -exp machines            extension platform-sensitivity sweep
//	luqr-bench -exp breakdown           measured vs. simulated per-kernel breakdown
//	luqr-bench -exp all                 everything
//	luqr-bench -json BENCH_kernels.json machine-readable kernel rates (GFLOP/s, ns/op)
//	luqr-bench -sweep-workers BENCH_solver.json
//	                                    schema-2 solver benchmark at production sizes
//	                                    (default N=4096 nb=192; -n/-nb override):
//	                                    measured worker + tile-order sweeps, the
//	                                    simulated DAG-scaling curve, and dispatch
//	                                    ns/task vs. the single-heap seed baseline
//	luqr-bench -validate-solver BENCH_solver.json
//	                                    check a solver bench file against the
//	                                    schema-2 contract (the CI smoke gate)
//	luqr-bench -diff-kernels BENCH_kernels.json [-diff-baseline OLD.json]
//	                                    benchstat-style kernel before/after table;
//	                                    without -diff-baseline, compares the file's
//	                                    committed seed baseline vs. its current run
//	luqr-bench -tune-probe -n 512 [-tune-file tuning.json]
//	                                    run the nb/ib/workers autotuner probe for
//	                                    one matrix class, print the chosen point,
//	                                    and persist/reuse the tuning table
//	luqr-bench -alpha-learn -n 256 [-reps 3] [-tune-file tuning.json]
//	                                    exercise the online α learner from the
//	                                    CLI: run -reps hybrid factorizations on
//	                                    the class, resolve α from the tuning
//	                                    table before each (default 100 until
//	                                    learned), feed each outcome back, and
//	                                    print the learned per-class α
//	luqr-bench -timeline out.json       run one hybrid factorization, write the task
//	                                    timeline as Chrome trace-event JSON (open in
//	                                    chrome://tracing or Perfetto) and print the
//	                                    measured per-kernel stats table
//	luqr-bench -load http://host:8090   drive a running luqr-serve with a mixed
//	                                    solve/submit/status workload and report
//	                                    per-operation latency percentiles
//	                                    (-load-clients, -load-requests, -load-n,
//	                                    -load-nb, -load-matrices)
//
// Default sizes run in minutes on a laptop; pass -n/-nb (e.g. -n 20000
// -nb 240) for the paper-scale experiment.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"luqr/internal/core"
	"luqr/internal/criteria"
	"luqr/internal/experiments"
	"luqr/internal/matgen"
	"luqr/internal/service"
	"luqr/internal/tile"
	"luqr/internal/tune"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: table1, fig2, table2, fig3, table3, overhead, breakdown, all")
		n            = flag.Int("n", 480, "matrix order")
		nb           = flag.Int("nb", 40, "tile order")
		p            = flag.Int("p", 4, "grid rows")
		q            = flag.Int("q", 4, "grid columns")
		reps         = flag.Int("reps", 3, "random matrices per configuration")
		seed         = flag.Int64("seed", 1, "base random seed")
		workers      = flag.Int("workers", 0, "runtime workers (0 = GOMAXPROCS)")
		jsonOut      = flag.String("json", "", "write per-kernel GFLOP/s and ns/op as JSON to this path (e.g. BENCH_kernels.json) and exit")
		sweepWorkers = flag.String("sweep-workers", "", "run the schema-2 solver benchmark (defaults N=4096 nb=192; -n/-nb override), write JSON to this path (e.g. BENCH_solver.json), print the tables, and exit")
		validateFile = flag.String("validate-solver", "", "validate this BENCH_solver.json against the schema-2 contract and exit")
		diffKernels  = flag.String("diff-kernels", "", "print a benchstat-style kernel comparison for this BENCH_kernels.json and exit")
		diffBaseline = flag.String("diff-baseline", "", "older BENCH_kernels.json to diff against (with -diff-kernels; default: the file's own seed baseline)")
		tuneProbe    = flag.Bool("tune-probe", false, "run the autotuner probe for the class (-n, luqr), print the chosen point, and exit")
		alphaLearn   = flag.Bool("alpha-learn", false, "run -reps hybrid factorizations for the class (-n, luqr), learn α online from each outcome, print the learned value, and exit")
		tuneFile     = flag.String("tune-file", "", "tuning-table path for -tune-probe/-alpha-learn (empty = in-memory only)")
		timeline     = flag.String("timeline", "", "run one hybrid factorization, write its Chrome trace-event timeline to this path, print the per-kernel stats table, and exit")
		loadURL      = flag.String("load", "", "drive a running luqr-serve at this base URL with a mixed workload, print latency percentiles, and exit")
		loadClients  = flag.Int("load-clients", 4, "concurrent load-generator clients (with -load)")
		loadRequests = flag.Int("load-requests", 64, "total load-generator requests (with -load)")
		loadN        = flag.Int("load-n", 480, "matrix order of generated load (with -load)")
		loadNB       = flag.Int("load-nb", 40, "tile order of generated load (with -load)")
		loadMatrices = flag.Int("load-matrices", 4, "distinct operators cycled by the load generator; controls the attainable cache hit rate (with -load)")
	)
	flag.Parse()

	// The sweep has its own production-size defaults (N=4096, nb=192):
	// the global -n/-nb defaults (480/40) suit the §V table experiments but
	// reproduce the old scheduler-bound sweep. Explicit flags still win.
	nSet, nbSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "n":
			nSet = true
		case "nb":
			nbSet = true
		}
	})

	if *tuneProbe {
		tuner := tune.New(tune.Options{Path: *tuneFile, Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "luqr-bench: "+format+"\n", args...)
		}})
		e, probed, err := tuner.Tune(*n, "luqr")
		if err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		action := "table hit (probe skipped)"
		if probed {
			action = "probed"
		}
		fmt.Printf("tune: class luqr/n%d %s → %s (%.2f GF/s, machine %s)\n",
			*n, action, e.Point, e.GFlops, tune.MachineID())
		if *tuneFile != "" {
			fmt.Printf("tuning table: %s\n", *tuneFile)
		}
		return
	}

	if *alphaLearn {
		tuner := tune.New(tune.Options{Path: *tuneFile, Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "luqr-bench: "+format+"\n", args...)
		}})
		gen, err := matgen.ByName("random")
		if err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		const crit = "max"
		for i := 0; i < *reps; i++ {
			// Resolve α exactly the way the service does for a request with
			// alpha unset: the class's learned value, else the default 100.
			alpha, src := 100.0, "default"
			if st, ok := tuner.Alpha(*n, "luqr", crit); ok {
				alpha, src = st.Alpha, "learned"
			}
			c, err := criteria.Parse(crit, alpha)
			if err != nil {
				fmt.Fprintln(os.Stderr, "luqr-bench:", err)
				os.Exit(1)
			}
			a := gen.Gen(*n, rand.New(rand.NewSource(*seed+int64(i))))
			b := make([]float64, *n)
			for j := range b {
				b[j] = 1
			}
			res, err := core.Run(a, b, core.Config{
				NB: *nb, Criterion: c, TrackGrowth: true,
				Workers: *workers, Seed: *seed + int64(i),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "luqr-bench:", err)
				os.Exit(1)
			}
			r := res.Report
			upd, _ := tuner.Observe(r.N, r.Alg.String(), tune.Observation{
				Criterion: crit, Alpha: alpha, FracLU: r.FracLU(),
				Growth: r.Growth, PeakGrowth: r.PeakGrowth,
				HPL3: r.HPL3, Breakdown: r.Breakdown,
			})
			fmt.Printf("alpha-learn[%d]: ran α=%g (%s), fLU=%.2f peak-growth=%.3g hpl3=%.3g → α=%g (%d samples)\n",
				i, alpha, src, r.FracLU(), r.PeakGrowth, r.HPL3, upd.Alpha, upd.Samples)
		}
		st, ok := tuner.Alpha(*n, "luqr", crit)
		if !ok {
			fmt.Fprintln(os.Stderr, "luqr-bench: no α learned (criterion not learnable?)")
			os.Exit(1)
		}
		fmt.Printf("alpha-learn: applied learned α=%g for class luqr/n%d (criterion %s, %d samples, %d backoffs)\n",
			st.Alpha, *n, crit, st.Samples, st.Backoffs)
		if *tuneFile != "" {
			fmt.Printf("tuning table: %s\n", *tuneFile)
		}
		return
	}

	if *validateFile != "" {
		f, err := os.Open(*validateFile)
		if err == nil {
			var rep *experiments.SolverBenchReport
			rep, err = experiments.ValidateSolverBench(f)
			f.Close()
			if err == nil {
				fmt.Printf("%s: valid schema-%d solver bench (N=%d nb=%d, %d measured points, %d simulated)\n",
					*validateFile, rep.Schema, rep.N, rep.NB, len(rep.Solver), len(rep.SimSolver))
				for _, e := range rep.Mixed {
					matrix := e.Matrix
					if matrix == "" {
						matrix = "random" // pre-two-operator files carried no name
					}
					fmt.Printf("mixed %s %s: refined to tolerance (hpl3=%.3g, %d f32 steps, %d qr steps, %d demotions, %d epochs, %d conversions, %d refine iters)\n",
						matrix, e.Precision, e.HPL3, e.F32Steps, e.QRSteps, e.Demotions, e.F32Epochs, e.Conversions, e.RefineIters)
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *diffKernels != "" {
		newF, err := os.Open(*diffKernels)
		if err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		defer newF.Close()
		var oldF *os.File
		if *diffBaseline != "" {
			if oldF, err = os.Open(*diffBaseline); err != nil {
				fmt.Fprintln(os.Stderr, "luqr-bench:", err)
				os.Exit(1)
			}
			defer oldF.Close()
		}
		var oldR io.Reader
		if oldF != nil {
			oldR = oldF
		}
		if err := experiments.KernelBenchDiff(oldR, newF, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *loadURL != "" {
		if _, err := service.RunLoad(service.LoadOptions{
			URL:      *loadURL,
			Clients:  *loadClients,
			Requests: *loadRequests,
			N:        *loadN,
			NB:       *loadNB,
			Matrices: *loadMatrices,
			Seed:     *seed,
		}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *timeline != "" {
		o := experiments.Options{
			N: *n, NB: *nb, Grid: tile.NewGrid(*p, *q),
			Seed: *seed, Workers: *workers,
		}
		f, err := os.Create(*timeline)
		if err == nil {
			_, err = experiments.Timeline(o, f, os.Stdout)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *timeline)
		return
	}

	if *sweepWorkers != "" {
		o := experiments.SolverBenchOptions{Reps: *reps}
		if nSet {
			o.N = *n
		}
		if nbSet {
			o.NB = *nb
			o.NBs = []int{*nb}
		}
		f, err := os.Create(*sweepWorkers)
		if err == nil {
			err = experiments.WriteSolverBench(o, f, os.Stdout)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *sweepWorkers)
		return
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = experiments.WriteKernelBench(experiments.KernelBenchNBs, *reps, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}

	o := experiments.Options{
		N: *n, NB: *nb, Grid: tile.NewGrid(*p, *q),
		Reps: *reps, Seed: *seed, Workers: *workers,
	}
	out := os.Stdout

	runOne := func(name string) error {
		switch name {
		case "table1":
			experiments.Table1(*nb, 3, out)
		case "fig2":
			_, err := experiments.Fig2(o, out)
			return err
		case "table2":
			_, err := experiments.Table2(o, out)
			return err
		case "fig3":
			_, err := experiments.Fig3(o, out)
			return err
		case "table3":
			fmt.Fprintln(out, "# Table III — the special-matrix set")
			rng := rand.New(rand.NewSource(*seed))
			for i, e := range matgen.SpecialSet() {
				a := e.Gen(64, rng)
				fmt.Fprintf(out, "%2d  %-10s  ‖A‖₁=%-12.4g  %s\n", i+1, e.Name, a.Norm1(), e.Desc)
			}
		case "overhead":
			_, err := experiments.Overhead(o, out)
			return err
		case "ablation":
			_, err := experiments.Ablation(o, out)
			return err
		case "calu":
			_, err := experiments.CALUCompare(o, out)
			return err
		case "kappa":
			_, err := experiments.Kappa(o, out)
			return err
		case "machines":
			_, err := experiments.MachineSweep(o, out)
			return err
		case "breakdown":
			_, err := experiments.Breakdown(o, out)
			return err
		case "tune":
			fmt.Fprintln(out, "# Auto-tuned α per criterion (§VII future work): largest α with mean HPL3 ≤ 2× LUPP")
			for _, c := range []string{"max", "sum", "mumps"} {
				if _, _, _, err := experiments.TuneAlpha(o, c, 2.0, out); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table3", "fig2", "table2", "fig3", "overhead", "ablation", "calu", "breakdown"}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := runOne(name); err != nil {
			fmt.Fprintln(os.Stderr, "luqr-bench:", err)
			os.Exit(1)
		}
	}
}
