// Command luqr-serve runs the solver as a long-lived HTTP service: a job
// manager with a bounded submission queue in front of the work-stealing
// runtime, a factorization cache so repeated solves against one operator
// pay only the O(N²) replay + back-substitution, and an ops surface.
//
//	POST   /v1/jobs       submit an async factorization job (202; 429 when full)
//	GET    /v1/jobs/{id}  job status, criterion decisions, stability report
//	DELETE /v1/jobs/{id}  cancel a still-queued job
//	POST   /v1/solve      synchronous solve, served from the cache when warm
//	GET    /healthz       liveness
//	GET    /metrics       queue depth, cache hit rate, jobs by state, kernel totals
//
// SIGINT/SIGTERM triggers a graceful shutdown: intake stops (new work gets
// 503), running and queued jobs drain under -drain, then the process exits.
// See docs/API.md for the wire formats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"luqr/internal/service"
	"luqr/internal/tune"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8090", "listen address")
		queue       = flag.Int("queue", 64, "submission queue depth (beyond it: HTTP 429)")
		concurrency = flag.Int("concurrency", 2, "factorization jobs run in parallel")
		cacheSize   = flag.Int("cache", 16, "factorization cache entries (LRU beyond)")
		workers     = flag.Int("workers", 0, "runtime workers per factorization (0 = GOMAXPROCS)")
		maxN        = flag.Int("max-n", 4096, "largest accepted matrix order")
		maxBytes    = flag.Int64("max-bytes", service.DefaultMaxBodyBytes, "request body size limit (bytes; beyond it: HTTP 413)")
		drain       = flag.Duration("drain", 60*time.Second, "graceful-shutdown deadline for draining jobs")
		noTrace     = flag.Bool("no-trace", false, "disable per-job kernel tracing (drops per-kernel /metrics)")
		storeDir    = flag.String("store-dir", "", "directory for the disk-backed factor store (empty = no persistence)")
		storeMax    = flag.Int64("store-max-bytes", 1<<30, "factor-store size cap in bytes (coldest files evicted beyond)")
		tuneOn      = flag.Bool("tune", true, "autotune nb/ib/workers for requests that leave nb unset")
		tuneFile    = flag.String("tune-file", "", "tuning-table path (default <store-dir>/tuning.json when -store-dir is set, else in-memory only)")
		learnAlpha  = flag.Bool("learn-alpha", true, "learn the criterion threshold α per matrix class from finished jobs; requests with alpha unset apply it (needs -tune)")
	)
	flag.Parse()

	var tuner *tune.Tuner
	if *tuneOn {
		path := *tuneFile
		if path == "" && *storeDir != "" {
			// Keep the tuning table next to the factor store: both survive a
			// restart together.
			path = filepath.Join(*storeDir, "tuning.json")
		}
		tuner = tune.New(tune.Options{Path: path, Logf: log.Printf})
	}

	m, err := service.NewManager(service.Options{
		QueueSize:     *queue,
		Concurrency:   *concurrency,
		CacheEntries:  *cacheSize,
		Workers:       *workers,
		MaxN:          *maxN,
		NoTrace:       *noTrace,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		Tuner:         tuner,
		LearnAlpha:    *tuneOn && *learnAlpha,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "luqr-serve:", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(m, *maxBytes),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	persist := "off"
	if *storeDir != "" {
		persist = *storeDir
	}
	fmt.Printf("luqr-serve: listening on http://%s (queue=%d concurrency=%d cache=%d max-n=%d store=%s)\n",
		*addr, *queue, *concurrency, *cacheSize, *maxN, persist)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "luqr-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via the default handler

	fmt.Printf("luqr-serve: shutting down, draining jobs (deadline %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue. Shutdown
	// waits for in-flight HTTP requests (e.g. a synchronous solve), so the
	// two deadlines share dctx.
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "luqr-serve: http shutdown:", err)
	}
	if err := m.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "luqr-serve: drain:", err)
		os.Exit(1)
	}
	fmt.Println("luqr-serve: drained cleanly")
}
